//! Ecosystem experiment: what happens when *every* user adopts an
//! aggressive submission strategy? (the paper's stated future work, §8)
//!
//! ```text
//! cargo run --release --example ecosystem
//! ```
//!
//! The analytic models assume redundant jobs do not measurably change the
//! grid workload (§3.3) — reasonable for one user on an 80 000-core
//! infrastructure, but false if the whole community bursts. Here a
//! community of users shares a small simulated farm (pipeline mode, no
//! other background traffic); each user runs a stream of tasks under
//! `b`-fold multiple submission. Redundant copies that manage to start
//! before the cancellation race resolves burn worker slots for their full
//! execution time, so raising `b` degrades everyone's latency — exactly the
//! administrators' complaint the paper cites.

use gridstrat::prelude::*;
use std::collections::HashMap;

/// One user community sharing the farm; every user repeats `tasks` rounds
/// of `b`-fold burst submission with timeout `t_inf`.
struct Community {
    users: usize,
    tasks_per_user: usize,
    b: u32,
    t_inf: SimDuration,
    exec: SimDuration,
    // per-user state
    round_jobs: Vec<Vec<JobId>>,
    round_seq: Vec<u64>,
    round_started_at: Vec<SimTime>,
    tasks_done: Vec<usize>,
    job_owner: HashMap<JobId, usize>,
    /// measured grid latency of every completed task
    latencies: Vec<f64>,
}

impl Community {
    fn new(users: usize, tasks_per_user: usize, b: u32, t_inf: f64, exec: f64) -> Self {
        Community {
            users,
            tasks_per_user,
            b,
            t_inf: SimDuration::from_secs(t_inf),
            exec: SimDuration::from_secs(exec),
            round_jobs: vec![Vec::new(); users],
            round_seq: vec![0; users],
            round_started_at: vec![SimTime::ZERO; users],
            tasks_done: vec![0; users],
            job_owner: HashMap::new(),
            latencies: Vec::new(),
        }
    }

    /// token = user * 2^32 + per-user round sequence number
    fn token(&self, user: usize) -> u64 {
        (user as u64) << 32 | self.round_seq[user]
    }

    fn launch_round(&mut self, sim: &mut GridSimulation, user: usize, fresh_task: bool) {
        if fresh_task {
            self.round_started_at[user] = sim.now();
        }
        self.round_jobs[user].clear();
        for _ in 0..self.b {
            let id = sim.submit_with_exec(self.exec);
            self.round_jobs[user].push(id);
            self.job_owner.insert(id, user);
        }
        sim.set_timer(self.t_inf, self.token(user));
    }
}

impl Controller for Community {
    fn start(&mut self, sim: &mut GridSimulation) {
        for user in 0..self.users {
            self.launch_round(sim, user, true);
        }
    }

    fn on_event(&mut self, sim: &mut GridSimulation, ev: Notification) {
        match ev {
            Notification::JobStarted { id, at } => {
                let Some(&user) = self.job_owner.get(&id) else {
                    return;
                };
                if !self.round_jobs[user].contains(&id) {
                    return; // a stale copy started after its round ended: wasted slot
                }
                // task completes (latency-wise) at first start
                self.latencies
                    .push(at.since(self.round_started_at[user]).as_secs());
                let siblings: Vec<JobId> = self.round_jobs[user]
                    .iter()
                    .copied()
                    .filter(|&o| o != id)
                    .collect();
                for o in siblings {
                    sim.cancel(o); // no-op if the copy already started
                }
                self.round_jobs[user].clear();
                self.round_seq[user] += 1;
                self.tasks_done[user] += 1;
                if self.tasks_done[user] < self.tasks_per_user {
                    self.launch_round(sim, user, true);
                }
            }
            Notification::Timer { token, .. } => {
                let user = (token >> 32) as usize;
                let seq = token & 0xFFFF_FFFF;
                if user < self.users
                    && seq == self.round_seq[user]
                    && !self.round_jobs[user].is_empty()
                {
                    // round timed out: cancel and resubmit the burst
                    for &o in &self.round_jobs[user].clone() {
                        sim.cancel(o);
                    }
                    self.round_seq[user] += 1;
                    self.launch_round(sim, user, false);
                }
            }
            _ => {}
        }
    }

    fn done(&self) -> bool {
        self.tasks_done.iter().all(|&d| d >= self.tasks_per_user)
    }
}

fn main() {
    const USERS: usize = 40;
    const TASKS: usize = 5;
    println!(
        "community of {USERS} users × {TASKS} tasks on a 30-slot shared farm; every \
         user uses b-fold burst submission (copies run 600 s once started, cancels \
         take ~1 min to land)\n"
    );
    println!(
        "{:>3} {:>12} {:>12} {:>14} {:>16}",
        "b", "mean J", "p95 J", "subs (total)", "wasted starts"
    );

    for b in [1u32, 2, 4] {
        let mut cfg = GridConfig::pipeline_default();
        // a scarce farm: fewer slots than users, so the community saturates it
        cfg.sites = vec![gridstrat::sim::SiteConfig {
            name: "shared-farm".into(),
            slots: 30,
            weight: 1.0,
        }];
        cfg.background = None; // the community itself is the load
        cfg.faults.p_silent_loss = 0.03;
        // cancels are WMS round-trips: ~1 min before they take effect
        cfg.wms.cancellation_delay_mean_s = 60.0;
        let mut sim = GridSimulation::new(cfg, 0xEC0).expect("valid config");
        let mut community = Community::new(USERS, TASKS, b, 3_000.0, 600.0);
        sim.run_controller(&mut community);

        let mut lats = community.latencies.clone();
        lats.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let mean = lats.iter().sum::<f64>() / lats.len() as f64;
        let p95 = lats[(lats.len() as f64 * 0.95) as usize];
        let stats = sim.stats();
        // a "wasted start" is a redundant copy that started anyway and
        // burned a slot for its full execution time
        let wasted = stats.client_started as i64 - lats.len() as i64;
        println!(
            "{:>3} {:>11.0}s {:>11.0}s {:>14} {:>16}",
            b, mean, p95, stats.client_submitted, wasted
        );
    }

    println!(
        "\nreading: with everyone bursting, redundant copies consume the very \
         slots users compete for — latency and waste grow with b, which is why \
         the paper argues for the delayed strategy's ∆cost < 1 regime."
    );
}
