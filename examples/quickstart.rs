//! Quickstart: from a latency trace to tuned submission strategies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the paper's pipeline end to end on one synthetic EGEE week:
//! build the defective latency model, then compare the three client-side
//! strategies — single resubmission (§4), multiple submission (§5) and
//! delayed resubmission (§6) — on expectation, spread and grid cost.

use gridstrat::prelude::*;

fn main() {
    // 1. A week of probe measurements (synthetic stand-in for the paper's
    //    EGEE biomed traces; see DESIGN.md for the calibration).
    let trace = WeekId::W2006Ix.generate(0xE6EE);
    println!(
        "trace `{}`: {} probes, outlier ratio {:.1}%, body mean {:.0}s ± {:.0}s",
        trace.name,
        trace.len(),
        100.0 * trace.outlier_ratio(),
        trace.body_mean(),
        trace.body_std(),
    );

    // 2. The defective latency model F̃(t) = (1-ρ)F_R(t).
    let model = EmpiricalModel::from_trace(&trace).expect("trace is non-degenerate");

    // 3. Single resubmission: optimal timeout t∞ (eqs. 1–2).
    let single = SingleResubmission::optimize(&model);
    println!(
        "\nsingle resubmission : t∞* = {:>5.0}s  E_J = {:>4.0}s  σ_J = {:>4.0}s",
        single.timeout, single.expectation, single.std_dev
    );

    // 4. Multiple submission: burst of b copies (eqs. 3–4).
    for b in [2u32, 5] {
        let multi = MultipleSubmission::optimize(&model, b);
        println!(
            "multiple (b = {b})    : t∞* = {:>5.0}s  E_J = {:>4.0}s  σ_J = {:>4.0}s  ({:+.0}% vs single)",
            multi.timeout,
            multi.expectation,
            multi.std_dev,
            100.0 * (multi.expectation / single.expectation - 1.0),
        );
    }

    // 5. Delayed resubmission: submit a copy at t0, cancel the original at
    //    t∞ (eq. 5) — low latency *and* low grid load.
    let delayed = DelayedResubmission::optimize(&model);
    println!(
        "delayed             : t0* = {:>5.0}s  t∞* = {:>4.0}s  E_J = {:>4.0}s  N_// = {:.2}",
        delayed.t0, delayed.t_inf, delayed.expectation, delayed.n_parallel
    );

    // 6. The ∆cost criterion (eq. 6): is the grid less loaded than under
    //    single resubmission while users are faster?
    let best = optimize_delayed_delta_cost(&model);
    if let StrategyParams::Delayed { t0, t_inf } = best.params {
        println!(
            "\n∆cost optimum       : (t0, t∞) = ({t0:.0}s, {t_inf:.0}s)  E_J = {:.0}s  ∆cost = {:.3}",
            best.expectation, best.delta_cost
        );
        if best.delta_cost < 1.0 {
            println!(
                "→ the delayed strategy loads the grid {:.1}% LESS than plain single \
                 resubmission while finishing {:.1}% faster.",
                100.0 * (1.0 - best.delta_cost),
                100.0 * (1.0 - best.expectation / single.expectation),
            );
        }
    }

    // 7. Trust, but verify: execute all three tuned strategies against the
    //    discrete-event grid in one batched sweep and compare realised
    //    latency against the closed forms.
    let sweep = ScenarioSweep::over_strategies(
        vec![
            SingleResubmission::new(single.timeout).params(),
            MultipleSubmission::optimized(&model, 2).params(),
            DelayedResubmission::new(delayed.t0, delayed.t_inf).params(),
        ],
        WeekId::W2006Ix,
        MonteCarloConfig {
            trials: 2_000,
            seed: 0xE6EE,
        },
    );
    println!(
        "\nMonte-Carlo validation ({} trials per strategy):",
        sweep.config.trials
    );
    for cell in sweep.run() {
        let z = (cell.estimate.mean_j - cell.analytic_e_j).abs() / cell.estimate.stderr_j;
        println!(
            "  {:<9}: analytic E_J = {:>4.0}s, simulated {:>4.0}s ± {:.0}s  (z = {z:.1})",
            cell.strategy.name(),
            cell.analytic_e_j,
            cell.estimate.mean_j,
            cell.estimate.stderr_j,
        );
    }
}
